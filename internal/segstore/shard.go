package segstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"github.com/robotack/robotack/internal/results"
)

// A shard is one campaign's segment directory. Layout:
//
//	c/<escaped-name>/
//	    CURRENT          → name of the live generation dir ("g000000")
//	    g000000/
//	        000000.seg   sealed segment: EpisodeRecord JSON lines
//	        000000.idx   its header + partial aggregate (see index.go)
//	        000001.seg   ...
//	        000001.idx
//	        000002.seg   highest seq: the active (appendable) segment
//	        MANIFEST     sealed-segment header cache
//
// The highest-numbered .seg is always the active segment; everything
// below it is sealed and immutable. The compactor rewrites a shard
// into a fresh generation dir and swaps CURRENT, so readers never see
// a half-rewritten shard and the store's flock file is never renamed.
//
// Only segment *metadata* lives in memory. Records are read from the
// segment files on demand, which is what lets a million-episode store
// open without touching a million records.
const (
	currentFile  = "CURRENT"
	manifestFile = "MANIFEST"
	segSuffix    = ".seg"
	idxSuffix    = ".idx"
)

type shard struct {
	// mu guards all fields below; held across segment reads so queries
	// see a stable segment set. Lock order: Store.mu before shard.mu.
	mu sync.Mutex

	name string // campaign name (unescaped)
	dir  string // .../c/<escaped-name>

	gen    int    // current generation number
	genDir string // .../c/<escaped-name>/g%06d

	sealed []segMeta // immutable segments, ascending seq
	active segMeta   // the appendable tail segment
	// activeAgg is the running partial aggregate of the active segment,
	// folded on each append while the segment stays sorted.
	activeAgg *results.CampaignRecord
	w         *os.File // active segment writer; opened lazily

	// sealedFast and sealedMaxIdx summarize the sealed segments for the
	// fast-path check: every sealed segment sorted, ranges strictly
	// ascending in seq order. Maintained O(1) per seal.
	sealedFast   bool
	sealedMaxIdx int

	// compactQueued debounces the background compactor: set when the
	// shard is enqueued, cleared when its rewrite finishes.
	compactQueued bool
}

func genName(gen int) string            { return fmt.Sprintf("g%06d", gen) }
func segName(seq int) string            { return fmt.Sprintf("%06d%s", seq, segSuffix) }
func idxName(seq int) string            { return fmt.Sprintf("%06d%s", seq, idxSuffix) }
func (s *shard) segPath(seq int) string { return filepath.Join(s.genDir, segName(seq)) }
func (s *shard) idxPath(seq int) string { return filepath.Join(s.genDir, idxName(seq)) }

// fastPath reports whether the shard's episode indexes are provably
// distinct and ascending across segments — the condition under which
// Episodes can concatenate segments without a last-wins fold and
// AggregateEpisodes can merge partial aggregates.
func (s *shard) fastPath() bool {
	if !s.sealedFast || !s.active.sorted {
		return false
	}
	return s.active.n == 0 || len(s.sealed) == 0 || s.active.minIdx > s.sealedMaxIdx
}

// episodes reports the shard's record count: exact when the fast path
// holds, an upper bound (duplicates counted twice) otherwise.
func (s *shard) episodes() (n int, exact bool) {
	n = s.active.n
	for i := range s.sealed {
		n += s.sealed[i].n
	}
	return n, s.fastPath()
}

func (s *shard) bytes() int64 {
	b := s.active.bytes
	for i := range s.sealed {
		b += s.sealed[i].bytes
	}
	return b
}

// recomputeSealedFast rebuilds the O(1)-maintained summary from the
// full sealed list (used after open and compaction).
func (s *shard) recomputeSealedFast() {
	s.sealedFast = true
	s.sealedMaxIdx = 0
	first := true
	for i := range s.sealed {
		m := &s.sealed[i]
		if m.n == 0 {
			continue
		}
		if !m.sorted || (!first && m.minIdx <= s.sealedMaxIdx) {
			s.sealedFast = false
		}
		if first || m.maxIdx > s.sealedMaxIdx {
			s.sealedMaxIdx = m.maxIdx
		}
		first = false
	}
}

// scanSegment parses a segment file, rebuilding its metadata and — when
// the records are sorted — its partial aggregate. The torn-tail rule is
// the shared one (results.ScanJSONL): an unparsable final line is
// excluded from the clean length; interior corruption is a hard error.
func scanSegment(raw []byte, seq int, name string) (segMeta, *results.CampaignRecord, error) {
	m := segMeta{seq: seq, sorted: true}
	var agg *results.CampaignRecord
	good, err := results.ScanJSONL(raw, func(lineno int, line []byte) error {
		var ep results.EpisodeRecord
		if err := json.Unmarshal(line, &ep); err != nil {
			return fmt.Errorf("%w: %w", results.ErrMalformedLine, err)
		}
		if ep.Campaign != name {
			return fmt.Errorf("segstore: segment %d line %d: campaign %q in shard %q", seq, lineno, ep.Campaign, name)
		}
		foldAppend(&m, &agg, &ep)
		return nil
	})
	if err != nil {
		return segMeta{}, nil, err
	}
	m.bytes = int64(good)
	if !m.sorted {
		agg = nil
	}
	m.hasAgg = m.sorted && m.n > 0
	return m, agg, nil
}

// foldAppend advances a segment's metadata (and, while sorted, its
// partial aggregate) by one record — shared by the live append path and
// segment scans so both derive identical state.
func foldAppend(m *segMeta, agg **results.CampaignRecord, ep *results.EpisodeRecord) {
	if m.n == 0 {
		m.minIdx, m.maxIdx = ep.Index, ep.Index
	} else {
		if ep.Index <= m.maxIdx {
			m.sorted = false
			*agg = nil
		}
		if ep.Index < m.minIdx {
			m.minIdx = ep.Index
		}
		if ep.Index > m.maxIdx {
			m.maxIdx = ep.Index
		}
	}
	if m.sorted {
		if *agg == nil {
			c := results.NewCampaign(ep.Campaign, ep.Scenario, ep.Mode, ep.ExpectCrashes, 0)
			*agg = &c
		}
		(*agg).Fold(*ep)
	}
	m.n++
}

// openShard recovers one campaign's shard from disk. ro suppresses all
// repair writes (index rewrites, torn-tail truncation, stale-generation
// cleanup) so concurrent read-only loads never race the owning writer.
// It reports the bytes of raw segment data it had to parse and of index
// metadata it read, feeding OpenStats.
func openShard(dir, name string, ro bool) (*shard, int64, int64, error) {
	s := &shard{name: name, dir: dir}
	var scanned, idxBytes int64

	gen, err := readCurrent(dir)
	if err != nil {
		return nil, 0, 0, err
	}
	s.gen = gen
	s.genDir = filepath.Join(dir, genName(gen))

	seqs, err := listSegs(s.genDir)
	if err != nil {
		return nil, 0, 0, err
	}
	if len(seqs) == 0 {
		// A freshly created (or crash-interrupted-at-birth) generation:
		// start segment 0 empty.
		s.active = segMeta{seq: 0, sorted: true}
		s.sealedFast = true
		return s, 0, 0, nil
	}
	activeSeq := seqs[len(seqs)-1]
	sealedSeqs := seqs[:len(seqs)-1]

	// Sealed segments: MANIFEST first (one small read), falling back to
	// per-segment .idx files, falling back to a raw scan (repairing the
	// .idx when we own the store).
	manifest := map[int]segMeta{}
	if raw, err := os.ReadFile(filepath.Join(s.genDir, manifestFile)); err == nil {
		if metas, err := decodeManifest(raw); err == nil {
			idxBytes += int64(len(raw))
			for _, m := range metas {
				manifest[m.seq] = m
			}
		}
	}
	staleManifest := len(manifest) != len(sealedSeqs)
	for _, seq := range sealedSeqs {
		m, ok := manifest[seq]
		if ok {
			if fi, err := os.Stat(s.segPath(seq)); err != nil || fi.Size() != m.bytes {
				ok = false // the cache disagrees with the segment itself
			}
		}
		if !ok {
			staleManifest = true
			var err error
			m, _, err = recoverSealed(s, seq, ro, &scanned, &idxBytes)
			if err != nil {
				return nil, 0, 0, err
			}
		}
		s.sealed = append(s.sealed, m)
	}
	if staleManifest && !ro {
		if err := s.writeManifest(); err != nil {
			return nil, 0, 0, err
		}
	}
	s.recomputeSealedFast()

	// Active segment: a clean Close leaves a .idx cache beside it; adopt
	// it when it still matches the file size (a stat, not a read — the
	// whole point is never touching record bytes), otherwise scan the
	// tail.
	fi, err := os.Stat(s.segPath(activeSeq))
	if err != nil {
		return nil, 0, 0, fmt.Errorf("segstore: stat active segment: %w", err)
	}
	adopted := false
	if idxRaw, err := os.ReadFile(s.idxPath(activeSeq)); err == nil {
		if m, err := decodeIdx(idxRaw, activeSeq); err == nil && m.bytes == fi.Size() {
			idxBytes += int64(len(idxRaw))
			s.active = m
			s.activeAgg = m.agg
			s.active.agg = nil
			adopted = true
		}
	}
	if !adopted {
		raw, err := os.ReadFile(s.segPath(activeSeq))
		if err != nil {
			return nil, 0, 0, fmt.Errorf("segstore: read active segment: %w", err)
		}
		m, agg, err := scanSegment(raw, activeSeq, name)
		if err != nil {
			return nil, 0, 0, fmt.Errorf("segstore: %s: %w", s.segPath(activeSeq), err)
		}
		scanned += int64(len(raw))
		if !ro && m.bytes < int64(len(raw)) {
			// Torn tail from a crash mid-append: cut it so the next
			// append starts on a clean line boundary.
			if err := os.Truncate(s.segPath(activeSeq), m.bytes); err != nil {
				return nil, 0, 0, fmt.Errorf("segstore: drop torn tail: %w", err)
			}
		}
		s.active = m
		s.activeAgg = agg
	}
	if !ro {
		// Generations other than CURRENT are leftovers from a crashed
		// compaction swap — either direction of the swap is complete, so
		// they are garbage.
		removeStaleGens(dir, gen)
	}
	return s, scanned, idxBytes, nil
}

// recoverSealed loads one sealed segment's metadata from its .idx, or
// rescans the segment (rewriting the .idx unless read-only).
func recoverSealed(s *shard, seq int, ro bool, scanned, idxBytes *int64) (segMeta, *results.CampaignRecord, error) {
	segPath := s.segPath(seq)
	fi, err := os.Stat(segPath)
	if err != nil {
		return segMeta{}, nil, fmt.Errorf("segstore: missing segment: %w", err)
	}
	if raw, err := os.ReadFile(s.idxPath(seq)); err == nil {
		if m, err := decodeIdx(raw, seq); err == nil && m.bytes == fi.Size() {
			*idxBytes += int64(len(raw))
			m.agg = nil // stays lazy; reloaded from the .idx when needed
			return m, nil, nil
		}
	}
	raw, err := os.ReadFile(segPath)
	if err != nil {
		return segMeta{}, nil, fmt.Errorf("segstore: read segment: %w", err)
	}
	m, agg, err := scanSegment(raw, seq, s.name)
	if err != nil {
		return segMeta{}, nil, fmt.Errorf("segstore: %s: %w", segPath, err)
	}
	*scanned += int64(len(raw))
	if m.bytes < int64(len(raw)) {
		// A sealed segment can carry a torn tail if the crash hit
		// between the roll's write and its seal bookkeeping.
		if !ro {
			if err := os.Truncate(segPath, m.bytes); err != nil {
				return segMeta{}, nil, fmt.Errorf("segstore: drop torn tail: %w", err)
			}
		}
	}
	if !ro {
		m.agg = agg
		if err := writeFileAtomic(s.idxPath(seq), encodeIdx(&m)); err != nil {
			return segMeta{}, nil, err
		}
		m.agg = nil
	}
	return m, agg, nil
}

// sealedAgg returns a sealed segment's partial aggregate, reading it
// from the .idx file on first use. Returns nil when the segment has
// none (unsorted, or empty).
func (s *shard) sealedAgg(i int) (*results.CampaignRecord, error) {
	m := &s.sealed[i]
	if !m.hasAgg {
		return nil, nil
	}
	if m.agg == nil {
		raw, err := os.ReadFile(s.idxPath(m.seq))
		if err != nil {
			return nil, fmt.Errorf("segstore: read segment index: %w", err)
		}
		dec, err := decodeIdx(raw, m.seq)
		if err != nil {
			return nil, err
		}
		if dec.agg == nil {
			return nil, fmt.Errorf("segstore: %s: aggregate missing", s.idxPath(m.seq))
		}
		m.agg = dec.agg
	}
	return m.agg, nil
}

// writeManifest atomically replaces the shard's sealed-segment cache.
func (s *shard) writeManifest() error {
	return writeFileAtomic(filepath.Join(s.genDir, manifestFile), encodeManifest(s.sealed))
}

// seal closes the active segment: sync, write its .idx (header plus
// partial aggregate when sorted), move it to the sealed list, refresh
// the MANIFEST, and start the next segment. The ordering makes every
// crash window recoverable: the segment's own bytes are durable before
// any metadata describes them, and metadata is rebuilt from segments
// whenever it is missing or stale.
func (s *shard) seal() error {
	if s.w != nil {
		if err := s.w.Sync(); err != nil {
			return fmt.Errorf("segstore: sync segment: %w", err)
		}
		if err := s.w.Close(); err != nil {
			return fmt.Errorf("segstore: close segment: %w", err)
		}
		s.w = nil
	}
	m := s.active
	m.hasAgg = m.sorted && m.n > 0
	m.agg = s.activeAgg
	if err := writeFileAtomic(s.idxPath(m.seq), encodeIdx(&m)); err != nil {
		return err
	}
	m.agg = nil
	s.sealed = append(s.sealed, m)
	s.recomputeSealedFast() // sealing is rare; the rescan is segment count, not records
	if err := s.writeManifest(); err != nil {
		return err
	}
	s.active = segMeta{seq: m.seq + 1, sorted: true}
	s.activeAgg = nil
	return nil
}

// openWriter makes the active segment appendable (lazily, so read-heavy
// stores with many campaigns don't hold a descriptor per shard).
func (s *shard) openWriter() error {
	if s.w != nil {
		return nil
	}
	// The running aggregate must cover the whole segment before any new
	// record folds into it.
	if err := s.ensureActiveAgg(); err != nil {
		return err
	}
	f, err := os.OpenFile(s.segPath(s.active.seq), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("segstore: open segment: %w", err)
	}
	s.w = f
	// The active segment's .idx is a close-time scan cache; the appends
	// about to happen make it stale (a size check guards adoption, but
	// there is no reason to leave it lying around).
	os.Remove(s.idxPath(s.active.seq))
	return nil
}

// closeWriter seals nothing; it writes the active segment's .idx as a
// scan cache for the next open and releases the descriptor. The cache
// is header-only — no partial aggregate — so open cost stays a few
// dozen bytes per shard no matter how full the active segment is; the
// aggregate is rebuilt lazily (one bounded segment scan) by
// ensureActiveAgg when next needed.
func (s *shard) closeWriter() error {
	var firstErr error
	if s.w != nil {
		if err := s.w.Sync(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := s.w.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		s.w = nil
	}
	m := s.active
	m.hasAgg = false
	m.agg = nil
	if err := writeFileAtomic(s.idxPath(m.seq), encodeIdx(&m)); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// ensureActiveAgg rebuilds the active segment's running aggregate after
// a reopen adopted a header-only close cache. The scan is bounded by
// the roll threshold, and it must run before any append folds into the
// aggregate — a fold starting mid-segment would silently drop the
// earlier records from the campaign's fast-path summary.
func (s *shard) ensureActiveAgg() error {
	if s.activeAgg != nil || !s.active.sorted || s.active.n == 0 {
		return nil
	}
	raw, err := os.ReadFile(s.segPath(s.active.seq))
	if err != nil {
		return fmt.Errorf("segstore: read active segment: %w", err)
	}
	m, agg, err := scanSegment(raw, s.active.seq, s.name)
	if err != nil {
		return fmt.Errorf("segstore: %s: %w", s.segPath(s.active.seq), err)
	}
	if m.n != s.active.n || m.bytes != s.active.bytes || !m.sorted {
		return fmt.Errorf("segstore: %s: segment diverged from its index (%d/%d records, %d/%d bytes)",
			s.segPath(s.active.seq), m.n, s.active.n, m.bytes, s.active.bytes)
	}
	s.activeAgg = agg
	return nil
}

// readCurrent resolves the live generation, tolerating a missing or
// torn CURRENT by picking the highest generation dir present (the swap
// writes CURRENT last, so the highest complete dir is the newest).
func readCurrent(dir string) (int, error) {
	raw, err := os.ReadFile(filepath.Join(dir, currentFile))
	if err == nil {
		var gen int
		nameStr := strings.TrimSpace(string(raw))
		if n, err := fmt.Sscanf(nameStr, "g%06d", &gen); n == 1 && err == nil && genName(gen) == nameStr {
			if _, err := os.Stat(filepath.Join(dir, nameStr)); err == nil {
				return gen, nil
			}
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("segstore: read shard dir: %w", err)
	}
	best, found := 0, false
	for _, e := range entries {
		var gen int
		if !e.IsDir() {
			continue
		}
		if n, err := fmt.Sscanf(e.Name(), "g%06d", &gen); n == 1 && err == nil && genName(gen) == e.Name() {
			if !found || gen > best {
				best, found = gen, true
			}
		}
	}
	if !found {
		return 0, fmt.Errorf("segstore: shard %s has no generation dir", dir)
	}
	return best, nil
}

// removeStaleGens deletes generation dirs other than the live one.
func removeStaleGens(dir string, live int) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if e.IsDir() && e.Name() != genName(live) && strings.HasPrefix(e.Name(), "g") {
			os.RemoveAll(filepath.Join(dir, e.Name()))
		}
	}
}

// listSegs returns the generation's segment sequence numbers ascending.
func listSegs(genDir string) ([]int, error) {
	entries, err := os.ReadDir(genDir)
	if err != nil {
		return nil, fmt.Errorf("segstore: read generation dir: %w", err)
	}
	var seqs []int
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		var seq int
		base := strings.TrimSuffix(name, segSuffix)
		if n, err := fmt.Sscanf(base, "%06d", &seq); n != 1 || err != nil || segName(seq) != name {
			return nil, fmt.Errorf("segstore: unexpected file %s in %s", name, genDir)
		}
		seqs = append(seqs, seq)
	}
	sort.Ints(seqs)
	return seqs, nil
}

// writeFileAtomic stages content in a temp file, fsyncs, and renames it
// into place — the runq compactJournal idiom, so a crash at any point
// leaves either the old file or the complete new one.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("segstore: stage %s: %w", filepath.Base(path), err)
	}
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("segstore: stage %s: %w", filepath.Base(path), err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("segstore: stage %s: %w", filepath.Base(path), err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("segstore: install %s: %w", filepath.Base(path), err)
	}
	return nil
}
