package campaignd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/robotack/robotack/internal/core"
	"github.com/robotack/robotack/internal/results"
)

// seededStore builds a store with two finished campaigns and one
// interrupted campaign (episodes only).
func seededStore(t *testing.T) *results.MemStore {
	t.Helper()
	store := results.NewMemStore()
	a := results.NewCampaign("alpha", "DS-1", core.ModeSmart, true, 10)
	a.Runs, a.EBs, a.Crashes = 10, 8, 4
	b := results.NewCampaign("beta", "DS-2", core.ModeRandom, true, 10)
	b.Runs, b.EBs, b.Crashes = 10, 2, 1
	for _, rec := range []results.CampaignRecord{a, b} {
		if err := store.PutCampaign(rec); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		ep := results.EpisodeRecord{
			V: results.Version, Campaign: "interrupted", Index: i, Seed: int64(100 + i),
			Scenario: "DS-2", Mode: core.ModeSmart, Launched: true, EB: i%2 == 0,
			MinDelta: 5.5, Frames: 100,
		}
		if err := store.Append(ep); err != nil {
			t.Fatal(err)
		}
	}
	return store
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

// newTestServer builds a campaignd server over store and tears its
// queue down with the test.
func newTestServer(t *testing.T, store results.Store, opts ...Option) *httptest.Server {
	t.Helper()
	srv := New(store, opts...)
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

// waitRun polls a run's status until it leaves the live states,
// returning the terminal status.
func waitRun(t *testing.T, base string, id int, timeout time.Duration) RunStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var st RunStatus
	for {
		getJSON(t, fmt.Sprintf("%s/runs/%d", base, id), &st)
		if st.State != "queued" && st.State != "running" {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %d still in state %q after %v (%d/%d)", id, st.State, timeout, st.Done, st.Total)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestServeCampaignQueries(t *testing.T) {
	ts := newTestServer(t, seededStore(t))

	var recs []results.CampaignRecord
	getJSON(t, ts.URL+"/campaigns", &recs)
	if len(recs) != 2 || recs[0].Name != "alpha" || recs[1].Name != "beta" {
		t.Fatalf("campaigns = %+v", recs)
	}

	var one results.CampaignRecord
	if resp := getJSON(t, ts.URL+"/campaigns/alpha", &one); resp.StatusCode != http.StatusOK {
		t.Fatalf("get alpha: status %d", resp.StatusCode)
	}
	if one.EBs != 8 {
		t.Errorf("alpha EBs = %d, want 8", one.EBs)
	}

	// The interrupted campaign has no stored aggregate: /campaigns/{name}
	// recomputes it from episode records.
	var interrupted results.CampaignRecord
	getJSON(t, ts.URL+"/campaigns/interrupted", &interrupted)
	if interrupted.Runs != 3 || interrupted.EBs != 2 {
		t.Errorf("interrupted aggregate = %+v, want 3 runs / 2 EBs", interrupted)
	}

	var eps []results.EpisodeRecord
	getJSON(t, ts.URL+"/campaigns/interrupted/episodes", &eps)
	if len(eps) != 3 || eps[0].Index != 0 {
		t.Errorf("episodes = %+v", eps)
	}

	if resp := getJSON(t, ts.URL+"/campaigns/nonesuch", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing campaign: status %d, want 404", resp.StatusCode)
	}

	resp, err := http.Get(ts.URL + "/summary")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "alpha") || !strings.Contains(string(body), "RoboTack") {
		t.Errorf("summary output malformed:\n%s", body)
	}

	resp, err = http.Get(ts.URL + "/campaigns/alpha/summary")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "alpha") {
		t.Errorf("campaign summary malformed:\n%s", body)
	}
}

func TestServeDiff(t *testing.T) {
	ts := newTestServer(t, seededStore(t))

	// Campaign-vs-campaign within the store.
	var d results.CampaignDiff
	if resp := getJSON(t, ts.URL+"/diff?a=alpha&b=beta", &d); resp.StatusCode != http.StatusOK {
		t.Fatalf("diff status %d", resp.StatusCode)
	}
	if !approx(d.EBRateDelta, -0.6) {
		t.Errorf("EB delta = %v, want -0.6", d.EBRateDelta)
	}

	// Store-vs-store against a JSONL file on disk.
	path := filepath.Join(t.TempDir(), "other.jsonl")
	fs, err := results.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	improved := results.NewCampaign("alpha", "DS-1", core.ModeSmart, true, 10)
	improved.Runs, improved.EBs, improved.Crashes = 10, 10, 6
	if err := fs.PutCampaign(improved); err != nil {
		t.Fatal(err)
	}
	fs.Close()

	var diffs []results.CampaignDiff
	getJSON(t, ts.URL+"/diff?other="+path, &diffs)
	if len(diffs) != 3 { // alpha, beta, interrupted
		t.Fatalf("diffs = %+v, want 3", diffs)
	}
	for _, dd := range diffs {
		if dd.Name == "alpha" && !approx(dd.EBRateDelta, 0.2) {
			t.Errorf("alpha EB delta = %v, want 0.2", dd.EBRateDelta)
		}
	}

	if resp := getJSON(t, ts.URL+"/diff", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bare diff: status %d, want 400", resp.StatusCode)
	}
}

func approx(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

func TestServeLaunchValidation(t *testing.T) {
	ts := newTestServer(t, results.NewMemStore())

	for _, body := range []string{
		`{"scenario":"DS-2","mode":"warp","runs":2,"seed":1}`,                            // bad mode
		`{"scenario":"DS-99","mode":"smart","runs":2,"seed":1}`,                          // unknown scenario
		`{"scenario":"DS-2","mode":"smart","runs":0,"seed":1}`,                           // no runs
		`{"mode":"smart","runs":2,"seed":1}`,                                             // no scenario source
		`{"scenario":"DS-2","generate":{},"mode":"smart","runs":2,"seed":1}`,             // two sources
		`{"generate":{"target_kinds":["warp-gate"]},"mode":"smart","runs":2,"seed":1}`,   // unknown target kind
		`{"generate":{"ev_speed":{"min":-5,"max":-1}},"mode":"smart","runs":2,"seed":1}`, // degenerate space
		`not json`,
	} {
		resp, err := http.Post(ts.URL+"/runs", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}

	if resp := getJSON(t, ts.URL+"/runs/7", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing run: status %d, want 404", resp.StatusCode)
	}
}

func TestServeLaunchEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	store := results.NewMemStore()
	ts := newTestServer(t, store, WithWorkers(4))

	req := `{"scenario":"DS-2","mode":"smart","name":"api-ds2","runs":3,"seed":300}`
	resp, err := http.Post(ts.URL+"/runs", "application/json", bytes.NewBufferString(req))
	if err != nil {
		t.Fatal(err)
	}
	var st RunStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || st.ID == 0 {
		t.Fatalf("launch: status %d, %+v", resp.StatusCode, st)
	}
	if st.State != "queued" {
		t.Fatalf("accepted run starts %q, want queued", st.State)
	}

	st = waitRun(t, ts.URL, st.ID, 3*time.Minute)
	if st.State != "done" {
		t.Fatalf("run finished in state %q: %s", st.State, st.Error)
	}
	if st.Done != 3 {
		t.Errorf("progress = %d/%d, want 3/3", st.Done, st.Total)
	}

	// The launched campaign's records landed in the served store.
	var eps []results.EpisodeRecord
	getJSON(t, ts.URL+"/campaigns/api-ds2/episodes", &eps)
	if len(eps) != 3 {
		t.Fatalf("stored %d episodes, want 3", len(eps))
	}
	var rec results.CampaignRecord
	getJSON(t, ts.URL+"/campaigns/api-ds2", &rec)
	if rec.Runs != 3 || rec.BaseSeed != 300 {
		t.Errorf("aggregate = %+v", rec)
	}

	// Launching the same name again with resume=true folds the stored
	// episodes instead of re-running them, and completes fast.
	req2 := `{"scenario":"DS-2","mode":"smart","name":"api-ds2","runs":3,"seed":300,"resume":true}`
	resp2, err := http.Post(ts.URL+"/runs", "application/json", bytes.NewBufferString(req2))
	if err != nil {
		t.Fatal(err)
	}
	var st2 RunStatus
	if err := json.NewDecoder(resp2.Body).Decode(&st2); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	st2 = waitRun(t, ts.URL, st2.ID, 3*time.Minute)
	if st2.State != "done" {
		t.Fatalf("resumed run finished in state %q: %s", st2.State, st2.Error)
	}
	var rec2 results.CampaignRecord
	getJSON(t, ts.URL+"/campaigns/api-ds2", &rec2)
	if rec2.Runs != rec.Runs || rec2.EBs != rec.EBs {
		t.Errorf("resumed aggregate diverged: %+v vs %+v", rec2, rec)
	}

	var all []RunStatus
	getJSON(t, ts.URL+"/runs", &all)
	if len(all) != 2 || all[0].ID >= all[1].ID {
		t.Errorf("runs listing = %+v", all)
	}
}
