package campaignd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/robotack/robotack/internal/obs/trace"
	"github.com/robotack/robotack/internal/results"
	"github.com/robotack/robotack/internal/runq"
)

// TestLeaseCarriesTraceHeaders pins the trace side of the lease
// protocol without running an engine: a traced job's lease response
// carries the Traceparent header, the span-ingest endpoint accepts the
// owner's spans for the job's trace and rejects foreign workers and
// foreign traces.
func TestLeaseCarriesTraceHeaders(t *testing.T) {
	store := results.NewMemStore()
	sink := &trace.CollectSink{}
	tracer := trace.New("serve", sink)
	q, err := runq.Open("", runq.WithMaxConcurrent(0), runq.WithLeaseTTL(5*time.Second),
		runq.WithTracer(tracer))
	if err != nil {
		t.Fatal(err)
	}
	srv := New(store, WithQueue(q), WithTracer(tracer))
	defer q.Shutdown(context.Background())
	ts := newTestServerFrom(t, srv)

	post := func(path, worker string, body any) *http.Response {
		t.Helper()
		raw, _ := json.Marshal(body)
		req, err := http.NewRequest(http.MethodPost, ts.URL+path, bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(runq.WorkerHeader, worker)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	st := postRun(t, ts.URL, `{"scenario":"DS-2","mode":"smart","name":"traced-proto","runs":2,"seed":10}`)

	resp := post("/lease", "w1", runq.LeaseRequest{Worker: "w1"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lease: status %d", resp.StatusCode)
	}
	var lease runq.LeaseResponse
	if err := json.NewDecoder(resp.Body).Decode(&lease); err != nil {
		t.Fatal(err)
	}
	if lease.Job.Trace == nil {
		t.Fatal("leased job carries no TraceRef despite a traced queue")
	}
	wantTID := trace.DeriveTraceID("traced-proto", 10)
	if uint64(lease.Job.Trace.TraceID) != wantTID {
		t.Fatalf("trace ID %s, want %016x (deterministic from name+seed)", lease.Job.Trace.TraceID, wantTID)
	}
	hdr := resp.Header.Get(runq.TraceparentHeader)
	gotTID, gotSpan, ok := trace.ParseTraceparent(hdr)
	if !ok || gotTID != wantTID {
		t.Fatalf("lease Traceparent header %q: parsed (%x, ok=%v), want trace %x", hdr, gotTID, ok, wantTID)
	}
	if hdr != lease.Job.Trace.Traceparent(lease.Job.Attempt) {
		t.Errorf("header %q disagrees with TraceRef.Traceparent %q", hdr, lease.Job.Trace.Traceparent(lease.Job.Attempt))
	}
	if gotSpan == 0 {
		t.Error("lease span ID zero")
	}

	sp := trace.SpanData{
		TraceID: lease.Job.Trace.TraceID,
		SpanID:  trace.ID(trace.DeriveSpanID(wantTID, 1, trace.StreamWorkerJob)),
		Parent:  trace.ID(gotSpan),
		Name:    "worker-job", Service: "w1", Start: 1, Dur: 2, Sampled: true,
	}
	spansPath := fmt.Sprintf("/runs/%d/spans", st.ID)

	if resp := post(spansPath, "w2", runq.SpansRequest{Worker: "w2", Spans: []trace.SpanData{sp}}); resp.StatusCode != http.StatusConflict {
		t.Fatalf("foreign worker spans: status %d, want 409", resp.StatusCode)
	}
	bad := sp
	bad.TraceID++
	if resp := post(spansPath, "w1", runq.SpansRequest{Worker: "w1", Spans: []trace.SpanData{bad}}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("foreign trace spans: status %d, want 400", resp.StatusCode)
	}
	if resp := post(spansPath, "w1", runq.SpansRequest{Worker: "w1", Spans: []trace.SpanData{sp}}); resp.StatusCode != http.StatusOK {
		t.Fatalf("owner spans: status %d", resp.StatusCode)
	}
	found := false
	for _, got := range sink.Spans() {
		if got.SpanID == sp.SpanID {
			found = true
			if got.Service != "w1" {
				t.Errorf("ingested span service %q, want the origin worker's %q", got.Service, "w1")
			}
		}
	}
	if !found {
		t.Error("ingested span never reached the server's sink")
	}
}

// TestWorkerTraceContinuity is the cross-process tracing proof: a real
// runq.Worker executes a traced job against the service, and the
// server's single sink ends up holding one trace whose spans cross the
// process boundary — queue spans from the "serve" side, worker-job/
// engine-job/episode spans from the worker — all under the same
// deterministic trace ID, with the lease-protocol headers present on
// the worker's requests.
func TestWorkerTraceContinuity(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	store := results.NewMemStore()
	sink := &trace.CollectSink{}
	tracer := trace.New("serve", sink)
	q, err := runq.Open("", runq.WithMaxConcurrent(0), runq.WithLeaseTTL(10*time.Second),
		runq.WithTracer(tracer))
	if err != nil {
		t.Fatal(err)
	}
	srv := New(store, WithQueue(q), WithTracer(tracer))
	defer q.Shutdown(context.Background())

	// Record the worker's lease-protocol headers on the way through.
	var mu sync.Mutex
	headers := map[string]string{} // path → traceparent, for requests naming a worker
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if wk := r.Header.Get(runq.WorkerHeader); wk != "" {
			mu.Lock()
			headers[r.URL.Path] = r.Header.Get(runq.TraceparentHeader)
			mu.Unlock()
		}
		srv.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	st := postRun(t, ts.URL, `{"scenario":"DS-2","mode":"smart","name":"traced-remote","runs":2,"seed":300}`)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	w := &runq.Worker{Server: ts.URL, Name: "tw1", Workers: 2, Poll: 20 * time.Millisecond,
		TraceSample: 1} // sample every episode: the continuity check needs them
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		_ = w.Run(ctx)
	}()
	final := waitRun(t, ts.URL, st.ID, 2*time.Minute)
	if final.State != "done" {
		t.Fatalf("remote run finished %q: %s", final.State, final.Error)
	}
	cancel()
	<-workerDone

	wantTID := trace.ID(trace.DeriveTraceID("traced-remote", 300))
	traces := trace.Collect(sink.Spans())
	tr := trace.Find(traces, wantTID)
	if tr == nil {
		t.Fatalf("no trace %s in the sink (have %d traces)", wantTID, len(traces))
	}
	svcs := tr.Services()
	if len(svcs) < 2 {
		t.Fatalf("trace spans one service %v; want spans from both sides of the process boundary", svcs)
	}
	names := map[string]int{}
	for _, sp := range tr.Spans {
		if sp.TraceID != wantTID {
			t.Fatalf("span %s carries trace %s, want %s", sp.SpanID, sp.TraceID, wantTID)
		}
		names[sp.Name]++
	}
	for _, want := range []string{"run", "queue-wait", "lease", "worker-job", "engine-job", "episode"} {
		if names[want] == 0 {
			t.Errorf("trace has no %q span (have %v)", want, names)
		}
	}
	if tr.Root == nil || tr.Root.Name != "run" {
		t.Error("root span missing or not the run span")
	}

	// The analysis layer works over the real trace: a critical path
	// from the root and a breakdown that saw the queue and the worker.
	path := trace.CriticalPath(tr)
	if len(path) < 3 || path[0].Span.Name != "run" {
		t.Errorf("critical path too shallow: %d nodes", len(path))
	}
	bd := trace.Summarize(tr)
	if bd.Exec <= 0 || bd.Episodes == 0 {
		t.Errorf("breakdown missing exec/episodes: %+v", bd)
	}

	// Header continuity: the worker's in-run requests carried the job's
	// traceparent.
	mu.Lock()
	defer mu.Unlock()
	if _, ok := headers["/lease"]; !ok {
		t.Error("lease request missing the worker header")
	}
	epPath := fmt.Sprintf("/runs/%d/episodes", st.ID)
	wantHdr := trace.FormatTraceparent(uint64(wantTID), trace.DeriveSpanID(uint64(wantTID), 1, trace.StreamLease))
	if got := headers[epPath]; got != wantHdr {
		t.Errorf("episode stream traceparent %q, want %q", got, wantHdr)
	}
}
