package campaignd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/robotack/robotack/internal/core"
	"github.com/robotack/robotack/internal/experiment"
	"github.com/robotack/robotack/internal/results"
	"github.com/robotack/robotack/internal/runq"
	"github.com/robotack/robotack/internal/scenario"
	"github.com/robotack/robotack/internal/scenegen"
)

// stepExec is a hand-cranked executor: every episode waits for one
// send on step, so tests control exactly when progress happens.
type stepExec struct {
	step    chan struct{}
	started chan int
	mu      sync.Mutex
	cur     int
	max     int
}

func newStepExec() *stepExec {
	return &stepExec{step: make(chan struct{}), started: make(chan int, 16)}
}

func (e *stepExec) Execute(ctx context.Context, job runq.Job, progress func(done, total int)) error {
	e.mu.Lock()
	e.cur++
	if e.cur > e.max {
		e.max = e.cur
	}
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		e.cur--
		e.mu.Unlock()
	}()
	e.started <- job.ID
	for i := 1; i <= job.Total; i++ {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-e.step:
		}
		progress(i, job.Total)
	}
	return nil
}

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	Name string
	Data runq.Event
}

// readSSE consumes the stream until a terminal event (or EOF),
// returning every event seen.
func readSSE(t *testing.T, body *bufio.Scanner) []sseEvent {
	t.Helper()
	var out []sseEvent
	var name string
	for body.Scan() {
		line := body.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			var ev runq.Event
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatalf("bad SSE data %q: %v", line, err)
			}
			out = append(out, sseEvent{Name: name, Data: ev})
			if ev.State.Terminal() {
				return out
			}
		}
	}
	return out
}

func postRun(t *testing.T, base, body string) RunStatus {
	t.Helper()
	resp, err := http.Post(base+"/runs", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st RunStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /runs: status %d (%+v)", resp.StatusCode, st)
	}
	return st
}

// TestServeSSEOrdering: the event stream reports monotonically
// nondecreasing progress and ends with exactly one terminal "done"
// event; a late subscriber gets the terminal event immediately.
func TestServeSSEOrdering(t *testing.T) {
	exec := newStepExec()
	ts := newTestServer(t, results.NewMemStore(), WithExecutor(exec))

	st := postRun(t, ts.URL, `{"scenario":"DS-2","mode":"smart","name":"sse","runs":3,"seed":1}`)
	<-exec.started

	resp, err := http.Get(fmt.Sprintf("%s/runs/%d/events", ts.URL, st.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	done := make(chan []sseEvent, 1)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		done <- readSSE(t, sc)
	}()
	for i := 0; i < 3; i++ {
		exec.step <- struct{}{}
	}
	var events []sseEvent
	select {
	case events = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("SSE stream never delivered a terminal event")
	}

	if len(events) < 2 {
		t.Fatalf("events = %+v, want at least a snapshot and a terminal", events)
	}
	last := events[len(events)-1]
	if last.Name != "done" || last.Data.State != runq.StateDone || last.Data.Done != 3 {
		t.Fatalf("terminal event = %+v, want done 3/3", last)
	}
	prev := -1
	for i, ev := range events {
		if ev.Data.Done < prev {
			t.Errorf("event %d: done went backwards (%d after %d)", i, ev.Data.Done, prev)
		}
		prev = ev.Data.Done
		if i < len(events)-1 {
			if ev.Name != "progress" {
				t.Errorf("event %d named %q, want progress", i, ev.Name)
			}
			if ev.Data.State.Terminal() {
				t.Errorf("event %d: terminal state %q before the last event", i, ev.Data.State)
			}
		}
	}

	// A subscriber after completion sees one immediate terminal event.
	resp2, err := http.Get(fmt.Sprintf("%s/runs/%d/events", ts.URL, st.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	late := readSSE(t, bufio.NewScanner(resp2.Body))
	if len(late) != 1 || late[0].Name != "done" {
		t.Errorf("late subscription = %+v, want a single done event", late)
	}

	if resp, err := http.Get(ts.URL + "/runs/99/events"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("events for unknown run: status %d, want 404", resp.StatusCode)
		}
	}
}

// TestServeSSECancelMidRun: DELETE /runs/{id} mid-run terminates the
// event stream with a "cancelled" event and the job's engine context.
func TestServeSSECancelMidRun(t *testing.T) {
	exec := newStepExec()
	ts := newTestServer(t, results.NewMemStore(), WithExecutor(exec))

	st := postRun(t, ts.URL, `{"scenario":"DS-2","mode":"smart","name":"sse-cancel","runs":5,"seed":1}`)
	<-exec.started

	resp, err := http.Get(fmt.Sprintf("%s/runs/%d/events", ts.URL, st.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	done := make(chan []sseEvent, 1)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		done <- readSSE(t, sc)
	}()
	exec.step <- struct{}{} // one episode lands, then the client cancels

	req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/runs/%d", ts.URL, st.ID), nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var cancelled RunStatus
	if err := json.NewDecoder(dresp.Body).Decode(&cancelled); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK || cancelled.State != "cancelled" {
		t.Fatalf("DELETE: status %d, state %q", dresp.StatusCode, cancelled.State)
	}

	select {
	case events := <-done:
		last := events[len(events)-1]
		if last.Name != "cancelled" || last.Data.State != runq.StateCancelled {
			t.Fatalf("terminal event = %+v, want cancelled", last)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("SSE stream never saw the cancellation")
	}
	if st := waitRun(t, ts.URL, st.ID, 5*time.Second); st.State != "cancelled" {
		t.Errorf("final state = %q, want cancelled", st.State)
	}
}

// readFirstSSE returns the first event on a stream — the snapshot sent
// on subscribe.
func readFirstSSE(t *testing.T, body *bufio.Scanner) runq.Event {
	t.Helper()
	for body.Scan() {
		line := body.Text()
		if strings.HasPrefix(line, "data: ") {
			var ev runq.Event
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatalf("bad SSE data %q: %v", line, err)
			}
			return ev
		}
	}
	t.Fatal("SSE stream ended before any event")
	return runq.Event{}
}

// TestServeSSEDerivedTelemetry: progress events carry derived
// telemetry — a queued run's 1-based position behind the busy local
// slot, and a running job's episodes/sec estimate once progress
// reports land. Both are computed from live queue state, never
// journaled.
func TestServeSSEDerivedTelemetry(t *testing.T) {
	exec := newStepExec()
	ts := newTestServer(t, results.NewMemStore(), WithExecutor(exec))

	st1 := postRun(t, ts.URL, `{"scenario":"DS-2","mode":"smart","name":"telemetry-a","runs":3,"seed":1}`)
	<-exec.started // the single local slot is now busy

	st2 := postRun(t, ts.URL, `{"scenario":"DS-2","mode":"smart","name":"telemetry-b","runs":2,"seed":2}`)
	resp2, err := http.Get(fmt.Sprintf("%s/runs/%d/events", ts.URL, st2.ID))
	if err != nil {
		t.Fatal(err)
	}
	snap := readFirstSSE(t, bufio.NewScanner(resp2.Body))
	resp2.Body.Close()
	if snap.State != runq.StateQueued {
		t.Fatalf("second run state = %v, want queued behind the busy slot", snap.State)
	}
	if snap.QueuePos != 1 {
		t.Errorf("queued run's queue_pos = %d, want 1 (first in line)", snap.QueuePos)
	}

	resp1, err := http.Get(fmt.Sprintf("%s/runs/%d/events", ts.URL, st1.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp1.Body.Close()
	done := make(chan []sseEvent, 1)
	go func() { done <- readSSE(t, bufio.NewScanner(resp1.Body)) }()
	for i := 0; i < 3; i++ {
		// Space the episodes out so the rate estimator sees measurable
		// inter-report gaps.
		time.Sleep(2 * time.Millisecond)
		exec.step <- struct{}{}
	}

	select {
	case events := <-done:
		sawRate := false
		for _, ev := range events {
			if ev.Data.EpsPerSec > 0 {
				sawRate = true
				if ev.Data.State != runq.StateRunning {
					t.Errorf("eps_per_sec on a %v event; the estimate is for running jobs", ev.Data.State)
				}
			}
		}
		if !sawRate {
			t.Errorf("no progress event carried eps_per_sec > 0; events: %+v", events)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("SSE stream never finished the first run")
	}
}

// TestWorkerProtocol drives the lease/heartbeat/episodes/complete/fail
// endpoints directly, as a remote worker would.
func TestWorkerProtocol(t *testing.T) {
	store := results.NewMemStore()
	q, err := runq.Open("", runq.WithMaxConcurrent(0), runq.WithLeaseTTL(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	srv := New(store, WithQueue(q))
	defer q.Shutdown(context.Background())
	ts := newTestServerFrom(t, srv)

	post := func(path string, body any) (*http.Response, []byte) {
		t.Helper()
		raw, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		resp.Body.Close()
		return resp, buf.Bytes()
	}

	st := postRun(t, ts.URL, `{"scenario":"DS-2","mode":"smart","name":"proto","runs":2,"seed":10}`)

	// The dispatcher's reserved name is not leasable.
	if resp, _ := post("/lease", runq.LeaseRequest{Worker: "local"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("reserved-name lease: status %d, want 400", resp.StatusCode)
	}

	// Lease the job.
	resp, raw := post("/lease", runq.LeaseRequest{Worker: "w1"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lease: status %d", resp.StatusCode)
	}
	var lease runq.LeaseResponse
	if err := json.Unmarshal(raw, &lease); err != nil {
		t.Fatal(err)
	}
	if lease.Job.ID != st.ID || lease.Job.Attempt != 1 || lease.LeaseTTLMillis != 5000 {
		t.Fatalf("lease = %+v", lease)
	}

	// Nothing else is queued.
	if resp, _ := post("/lease", runq.LeaseRequest{Worker: "w2"}); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("empty lease: status %d, want 204", resp.StatusCode)
	}

	// Foreign heartbeats conflict; the owner's succeed and show up in
	// the run status.
	if resp, _ := post(fmt.Sprintf("/runs/%d/heartbeat", st.ID), runq.HeartbeatRequest{Worker: "w2"}); resp.StatusCode != http.StatusConflict {
		t.Fatalf("foreign heartbeat: status %d, want 409", resp.StatusCode)
	}
	if resp, _ := post(fmt.Sprintf("/runs/%d/heartbeat", st.ID), runq.HeartbeatRequest{Worker: "w1", Done: 1, Total: 2}); resp.StatusCode != http.StatusOK {
		t.Fatalf("heartbeat: status %d", resp.StatusCode)
	}
	var cur RunStatus
	getJSON(t, fmt.Sprintf("%s/runs/%d", ts.URL, st.ID), &cur)
	if cur.State != "running" || cur.Done != 1 || cur.Worker != "w1" {
		t.Fatalf("status after heartbeat = %+v", cur)
	}

	// Stream two episodes into the served store.
	eps := []results.EpisodeRecord{
		{V: results.Version, Campaign: "proto", Index: 0, Seed: 10, Scenario: "DS-2", Mode: core.ModeSmart, Launched: true, EB: true, Frames: 50},
		{V: results.Version, Campaign: "proto", Index: 1, Seed: 11, Scenario: "DS-2", Mode: core.ModeSmart, Launched: true, Frames: 50},
	}
	if resp, _ := post(fmt.Sprintf("/runs/%d/episodes", st.ID), runq.EpisodesRequest{Worker: "w1", Episodes: eps}); resp.StatusCode != http.StatusOK {
		t.Fatalf("episodes: status %d", resp.StatusCode)
	}
	stored, err := store.Episodes("proto")
	if err != nil || len(stored) != 2 {
		t.Fatalf("stored episodes = %d (%v), want 2", len(stored), err)
	}

	// Complete with the aggregate.
	agg := results.Aggregate(results.NewCampaign("proto", "DS-2", core.ModeSmart, true, 10), eps)
	if resp, _ := post(fmt.Sprintf("/runs/%d/complete", st.ID), runq.CompleteRequest{Worker: "w1", Campaign: &agg}); resp.StatusCode != http.StatusOK {
		t.Fatalf("complete: status %d", resp.StatusCode)
	}
	getJSON(t, fmt.Sprintf("%s/runs/%d", ts.URL, st.ID), &cur)
	if cur.State != "done" {
		t.Fatalf("state after complete = %q", cur.State)
	}
	var rec results.CampaignRecord
	getJSON(t, ts.URL+"/campaigns/proto", &rec)
	if rec.Runs != 2 || rec.EBs != 1 {
		t.Fatalf("served aggregate = %+v", rec)
	}
	if resp, _ := post(fmt.Sprintf("/runs/%d/heartbeat", st.ID), runq.HeartbeatRequest{Worker: "w1"}); resp.StatusCode != http.StatusConflict {
		t.Fatalf("post-completion heartbeat: status %d, want 409", resp.StatusCode)
	}

	// A second job, handed back by a shutting-down worker, requeues
	// and re-leases with resume.
	st2 := postRun(t, ts.URL, `{"scenario":"DS-1","mode":"random","name":"handback","runs":2,"seed":20}`)
	if resp, _ := post("/lease", runq.LeaseRequest{Worker: "w1"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("lease 2: status %d", resp.StatusCode)
	}
	if resp, _ := post(fmt.Sprintf("/runs/%d/fail", st2.ID), runq.FailRequest{Worker: "w1", Error: "worker shut down", Requeue: true}); resp.StatusCode != http.StatusOK {
		t.Fatalf("fail-requeue: status %d", resp.StatusCode)
	}
	getJSON(t, fmt.Sprintf("%s/runs/%d", ts.URL, st2.ID), &cur)
	if cur.State != "queued" {
		t.Fatalf("state after hand-back = %q, want queued", cur.State)
	}
	resp, raw = post("/lease", runq.LeaseRequest{Worker: "w2"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-lease: status %d", resp.StatusCode)
	}
	if err := json.Unmarshal(raw, &lease); err != nil {
		t.Fatal(err)
	}
	if lease.Job.Attempt != 2 || !lease.Job.Request.Resume {
		t.Fatalf("re-lease = %+v, want attempt 2 with resume", lease.Job)
	}
}

// newTestServerFrom wraps an already-constructed Server in httptest.
func newTestServerFrom(t *testing.T, srv *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

// TestWorkerEndToEnd runs a real runq.Worker against the service: the
// job executes on the worker's engine, episodes stream back into the
// served store, and the aggregate is bit-identical to a local run.
func TestWorkerEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	store := results.NewMemStore()
	q, err := runq.Open("", runq.WithMaxConcurrent(0), runq.WithLeaseTTL(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	srv := New(store, WithQueue(q))
	defer q.Shutdown(context.Background())
	ts := newTestServerFrom(t, srv)

	st := postRun(t, ts.URL, `{"scenario":"DS-2","mode":"smart","name":"remote-ds2","runs":4,"seed":300}`)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	w := &runq.Worker{Server: ts.URL, Name: "tw1", Workers: 4, Poll: 20 * time.Millisecond}
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		_ = w.Run(ctx)
	}()

	final := waitRun(t, ts.URL, st.ID, 2*time.Minute)
	if final.State != "done" {
		t.Fatalf("remote run finished %q: %s", final.State, final.Error)
	}
	cancel()
	<-workerDone

	eps, err := store.Episodes("remote-ds2")
	if err != nil || len(eps) != 4 {
		t.Fatalf("served store has %d episodes (%v), want 4", len(eps), err)
	}

	// A local run of the same campaign produces the identical record.
	local := results.NewMemStore()
	c := experiment.Campaign{Name: "remote-ds2", Scenario: scenario.Named("DS-2"), Mode: core.ModeSmart, ExpectCrashes: true}
	if _, err := experiment.RunCampaign(c, 4, 300, nil, experiment.WithSink(local)); err != nil {
		t.Fatal(err)
	}
	want, _ := local.Campaigns()
	got, _ := store.Campaigns()
	rawWant, _ := json.Marshal(want)
	rawGot, _ := json.Marshal(got)
	if string(rawWant) != string(rawGot) {
		t.Errorf("remote aggregate diverged from local run:\nlocal:  %s\nremote: %s", rawWant, rawGot)
	}
}

// TestServeInlineSpecAndGenerate: POST /runs accepts an inline
// scenegen spec and generator parameters, and both execute for real.
func TestServeInlineSpecAndGenerate(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	store := results.NewMemStore()
	ts := newTestServer(t, store, WithWorkers(4))

	// Inline spec: a registered spec's JSON resubmitted under a new name.
	ds1, ok := scenegen.Lookup("DS-1")
	if !ok {
		t.Fatal("DS-1 not registered")
	}
	spec := *ds1
	spec.Name = "inline-ds1"
	body, err := json.Marshal(map[string]any{
		"spec": &spec, "mode": "golden", "runs": 2, "seed": 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := postRun(t, ts.URL, string(body))
	// Unnamed inline sources get a job-unique record name, so two
	// unnamed sweeps can never clobber each other's records.
	if st.Scenario != "inline-ds1" || st.Name != "inline-ds1-golden-job1" {
		t.Fatalf("inline-spec status = %+v", st)
	}
	if final := waitRun(t, ts.URL, st.ID, 2*time.Minute); final.State != "done" {
		t.Fatalf("inline-spec run finished %q: %s", final.State, final.Error)
	}
	if eps, err := store.Episodes("inline-ds1-golden-job1"); err != nil || len(eps) != 2 {
		t.Fatalf("inline-spec episodes = %d (%v), want 2", len(eps), err)
	}

	// Generator parameters: {} sweeps the default space.
	st2 := postRun(t, ts.URL, `{"generate":{"max_extras":2},"mode":"golden","name":"gen-golden","runs":2,"seed":11}`)
	if st2.Scenario != "generated" {
		t.Fatalf("generate status = %+v", st2)
	}
	if final := waitRun(t, ts.URL, st2.ID, 2*time.Minute); final.State != "done" {
		t.Fatalf("generate run finished %q: %s", final.State, final.Error)
	}
	if eps, err := store.Episodes("gen-golden"); err != nil || len(eps) != 2 {
		t.Fatalf("generate episodes = %d (%v), want 2", len(eps), err)
	}
}
