package campaignd

import (
	"net/http"
	"path/filepath"
	"testing"

	"github.com/robotack/robotack/internal/results"
	"github.com/robotack/robotack/internal/segstore"
)

func TestStoresEndpoint(t *testing.T) {
	ts := newTestServer(t, seededStore(t))
	var stats []results.StoreStats
	resp := getJSON(t, ts.URL+"/stores", &stats)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /stores = %d", resp.StatusCode)
	}
	if len(stats) != 1 {
		t.Fatalf("got %d store entries, want 1", len(stats))
	}
	st := stats[0]
	if st.Format != results.FormatMem || st.Campaigns != 2 || st.Episodes != 3 {
		t.Errorf("stats = %+v, want mem format, 2 campaigns, 3 episodes", st)
	}
	if st.BytesEstimate <= 0 {
		t.Errorf("stats = %+v, want positive bytes estimate", st)
	}
}

// bareStore strips MemStore down to the core Store interface plus the
// episode lister, hiding StatsProvider — the GET /stores fallback path.
type bareStore struct{ inner *results.MemStore }

func (b bareStore) Append(ep results.EpisodeRecord) error        { return b.inner.Append(ep) }
func (b bareStore) PutCampaign(c results.CampaignRecord) error   { return b.inner.PutCampaign(c) }
func (b bareStore) Campaigns() ([]results.CampaignRecord, error) { return b.inner.Campaigns() }
func (b bareStore) Episodes(name string) ([]results.EpisodeRecord, error) {
	return b.inner.Episodes(name)
}
func (b bareStore) EpisodeCampaigns() []string { return b.inner.EpisodeCampaigns() }

func TestStoresEndpointFallback(t *testing.T) {
	ts := newTestServer(t, bareStore{inner: seededStore(t)})
	var stats []results.StoreStats
	getJSON(t, ts.URL+"/stores", &stats)
	if len(stats) != 1 {
		t.Fatalf("got %d store entries, want 1", len(stats))
	}
	st := stats[0]
	if st.Format != "unknown" || !st.Estimated {
		t.Errorf("stats = %+v, want unknown format flagged estimated", st)
	}
	if st.Campaigns != 2 || st.Episodes != 3 {
		t.Errorf("stats = %+v, want 2 campaigns / 3 episodes counted through the interface", st)
	}
}

// TestDiffOtherSegstoreDir points /diff?other= at a segstore directory:
// the autodetecting loader must accept it and the diff against an
// identical in-memory store must be all-zero.
func TestDiffOtherSegstoreDir(t *testing.T) {
	served := seededStore(t)
	dir := filepath.Join(t.TempDir(), "other.seg")
	other, err := segstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := served.Campaigns()
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := other.PutCampaign(rec); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range served.EpisodeCampaigns() {
		eps, err := served.Episodes(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, ep := range eps {
			if err := other.Append(ep); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := other.Close(); err != nil {
		t.Fatal(err)
	}

	ts := newTestServer(t, served)
	var diffs []results.CampaignDiff
	resp := getJSON(t, ts.URL+"/diff?other="+dir, &diffs)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /diff?other=<segstore dir> = %d", resp.StatusCode)
	}
	if len(diffs) != 3 {
		t.Fatalf("got %d campaign diffs, want 3", len(diffs))
	}
	for _, d := range diffs {
		if d.A == nil || d.B == nil || d.RunsDelta != 0 || d.EBRateDelta != 0 || d.CrashRateDelta != 0 {
			t.Errorf("campaign %q: nonzero diff %+v", d.Name, d)
		}
	}
}
