// Package campaignd is the HTTP campaign service: it serves a
// results.Store (campaign list, per-campaign records and episodes,
// Table II summaries, store-vs-store diffs) and queues new campaign
// runs on a durable run queue (internal/runq) — jobs survive
// restarts, execute under a bounded local concurrency, can be leased
// by remote robotack-worker processes, stream their episodes into the
// same store, and report live progress over Server-Sent Events. It is
// the many-clients face of the results API — robotack-campaign writes
// a store on one machine, robotack-serve makes it queryable, diffable
// and extendable for everyone else.
package campaignd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/robotack/robotack/internal/core"
	"github.com/robotack/robotack/internal/engine"
	"github.com/robotack/robotack/internal/experiment"
	"github.com/robotack/robotack/internal/obs"
	"github.com/robotack/robotack/internal/obs/trace"
	"github.com/robotack/robotack/internal/results"
	"github.com/robotack/robotack/internal/runq"
	"github.com/robotack/robotack/internal/segstore"
)

// httpSeconds returns the request-latency histogram series for one
// registered route. The label is the mux pattern, so cardinality is
// fixed by the API surface, not by client-chosen paths.
func httpSeconds(pattern string) *obs.Histogram {
	return obs.NewHistogram("robotack_http_request_seconds",
		"campaignd HTTP request latency by route.",
		obs.ExpBuckets(1e-4, 4, 10), obs.Label{Key: "route", Value: pattern})
}

// Server is the HTTP campaign service. Create one with New; it
// implements http.Handler.
//
// Query endpoints:
//
//	GET  /campaigns                    stored campaign aggregates
//	GET  /campaigns/{name}             one aggregate (recomputed from
//	                                   episodes when only those exist)
//	GET  /campaigns/{name}/episodes    the campaign's episode records
//	GET  /campaigns/{name}/summary     Table II text for one campaign
//	GET  /summary                      Table II text for the whole store
//	GET  /stores                       size and format stats for the served store
//	GET  /diff?other=path              diff the store against another store
//	                                   (JSONL file or segstore directory)
//	GET  /diff?a=name&b=name           diff two campaigns within the store
//
// Run-queue endpoints:
//
//	POST   /runs                       queue a campaign (JSON body: RunRequest)
//	GET    /runs                       all queued runs' statuses
//	GET    /runs/{id}                  one run's status and progress
//	GET    /runs/{id}/events           live progress over Server-Sent Events
//	DELETE /runs/{id}                  cancel a queued or running job
//
// Remote-worker protocol (see runq's protocol types):
//
//	POST /lease                        lease the next queued job
//	POST /runs/{id}/heartbeat          keep the lease alive, report progress
//	POST /runs/{id}/episodes           stream episode records into the store
//	POST /runs/{id}/spans              forward a traced job's worker spans
//	POST /runs/{id}/complete           deliver the final aggregate
//	POST /runs/{id}/fail               fail or hand back the job
type Server struct {
	store    results.Store
	workers  int
	epBatch  int
	oracles  map[core.Vector]core.Oracle
	queue    *runq.Queue
	ownQueue bool
	exec     runq.Executor
	tracer   *trace.Tracer
	log      *slog.Logger
	mux      *http.ServeMux
}

// Option configures a Server.
type Option func(*Server)

// WithWorkers sets the engine worker-pool size for locally executed
// runs.
func WithWorkers(n int) Option {
	return func(s *Server) {
		if n >= 1 {
			s.workers = n
		}
	}
}

// WithEpisodeBatch sets the lockstep episode-lane count per engine
// worker for locally executed runs (engine.WithEpisodeBatch); lanes
// coalesce same-network oracle queries into batched inference. <=1
// disables lanes.
func WithEpisodeBatch(k int) Option {
	return func(s *Server) {
		if k >= 1 {
			s.epBatch = k
		}
	}
}

// WithOracles supplies trained safety-hijacker oracles to locally
// executed runs (default: the analytic oracle).
func WithOracles(o map[core.Vector]core.Oracle) Option {
	return func(s *Server) { s.oracles = o }
}

// WithQueue serves an externally owned queue (e.g. a durable one
// opened on a -queue-dir). The caller keeps responsibility for
// shutting it down; without this option the server creates and owns a
// memory-only queue.
func WithQueue(q *runq.Queue) Option {
	return func(s *Server) { s.queue = q }
}

// WithExecutor replaces the local executor (tests use stubs; the
// default runs jobs on per-job engines into the served store).
func WithExecutor(exec runq.Executor) Option {
	return func(s *Server) { s.exec = exec }
}

// WithTracer enables span tracing: a server-created queue gets the
// tracer (submitted runs carry deterministic trace IDs and emit
// lifecycle spans), and POST /runs/{id}/spans ingests workers'
// forwarded spans into the same sink. A queue supplied via WithQueue
// keeps its own tracer configuration (runq.WithTracer) — pass the same
// tracer to both. Nil is a no-op.
func WithTracer(t *trace.Tracer) Option {
	return func(s *Server) { s.tracer = t }
}

// WithLogger sets the server's structured logger for request-level
// errors (default: discard). The queue's logger is configured
// separately on the queue itself.
func WithLogger(l *slog.Logger) Option {
	return func(s *Server) {
		if l != nil {
			s.log = l
		}
	}
}

// New creates the campaign service over store and starts its queue's
// dispatcher.
func New(store results.Store, opts ...Option) *Server {
	s := &Server{
		store:   store,
		workers: engine.DefaultWorkers(),
		log:     obs.Discard(),
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.queue == nil {
		q, err := runq.Open("", runq.WithTracer(s.tracer)) // memory-only queues cannot fail to open
		if err != nil {
			panic(err)
		}
		s.queue = q
		s.ownQueue = true
	}
	if s.exec == nil {
		s.exec = runq.LocalExecutor{Store: s.store, Oracles: s.oracles, Workers: s.workers, EpisodeBatch: s.epBatch}
	}
	s.queue.Start(s.exec)

	s.mux = http.NewServeMux()
	s.handle("GET /campaigns", s.handleCampaigns)
	s.handle("GET /campaigns/{name}", s.handleCampaign)
	s.handle("GET /campaigns/{name}/episodes", s.handleEpisodes)
	s.handle("GET /campaigns/{name}/summary", s.handleCampaignSummary)
	s.handle("GET /summary", s.handleSummary)
	s.handle("GET /stores", s.handleStores)
	s.handle("GET /diff", s.handleDiff)
	s.handle("POST /runs", s.handleLaunch)
	s.handle("GET /runs", s.handleRuns)
	s.handle("GET /runs/{id}", s.handleRun)
	s.handle("GET /runs/{id}/events", s.handleRunEvents)
	s.handle("DELETE /runs/{id}", s.handleRunCancel)
	s.handle("POST /lease", s.handleLease)
	s.handle("POST /runs/{id}/heartbeat", s.handleHeartbeat)
	s.handle("POST /runs/{id}/episodes", s.handleWorkerEpisodes)
	s.handle("POST /runs/{id}/spans", s.handleWorkerSpans)
	s.handle("POST /runs/{id}/complete", s.handleComplete)
	s.handle("POST /runs/{id}/fail", s.handleFail)
	return s
}

// handle registers a route wrapped with per-route latency recording
// and lease-protocol header logging. The histogram series is created
// once at registration; the wrapper itself only reads the clock and
// bumps atomics. SSE streams are the one caveat — their "latency" is
// the stream's lifetime — which is still useful (it counts open event
// streams' durations). Requests that identify a worker via
// X-Robotack-Worker log it (plus any trace context) at Debug, so a
// fleet's traffic is attributable per worker without body parsing.
func (s *Server) handle(pattern string, fn http.HandlerFunc) {
	h := httpSeconds(pattern)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		if wk := r.Header.Get(runq.WorkerHeader); wk != "" {
			s.log.Debug("worker request", "route", pattern, "worker", wk,
				"traceparent", r.Header.Get(runq.TraceparentHeader))
		}
		if !obs.Enabled() {
			fn(w, r)
			return
		}
		start := time.Now()
		fn(w, r)
		h.Observe(time.Since(start).Seconds())
	})
}

// Close shuts down a server-owned queue (no-op when the queue came
// from WithQueue — its owner shuts it down).
func (s *Server) Close() error {
	if !s.ownQueue {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return s.queue.Shutdown(ctx)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// aggregate returns the stored aggregate for name, recomputing it from
// episode records when the campaign was interrupted before its
// aggregate landed.
func (s *Server) aggregate(name string) (*results.CampaignRecord, error) {
	return results.AggregateFor(s.store, name)
}

func (s *Server) handleCampaigns(w http.ResponseWriter, r *http.Request) {
	recs, err := s.store.Campaigns()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, recs)
}

func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	rec, err := s.aggregate(name)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if rec == nil {
		writeError(w, http.StatusNotFound, "no campaign %q in store", name)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *Server) handleEpisodes(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	eps, err := s.store.Episodes(name)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if len(eps) == 0 {
		writeError(w, http.StatusNotFound, "no episodes for campaign %q", name)
		return
	}
	writeJSON(w, http.StatusOK, eps)
}

func (s *Server) handleCampaignSummary(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	rec, err := s.aggregate(name)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if rec == nil {
		writeError(w, http.StatusNotFound, "no campaign %q in store", name)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, experiment.FormatTableII([]results.CampaignRecord{*rec}))
}

func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) {
	recs, err := s.store.Campaigns()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, experiment.FormatTableII(recs))
	robo, base := splitByMode(recs)
	fmt.Fprintf(w, "\n%s", experiment.FormatSummary(experiment.Summarize(robo), experiment.Summarize(base)))
}

// splitByMode separates the smart campaigns from the random baseline
// for the headline summary, matching robotack-campaign's headline:
// golden (mode 0) and noSH campaigns belong to neither side.
func splitByMode(recs []results.CampaignRecord) (robo, base []results.CampaignRecord) {
	for _, r := range recs {
		switch r.Mode {
		case core.ModeSmart:
			robo = append(robo, r)
		case core.ModeRandom:
			base = append(base, r)
		}
	}
	return robo, base
}

// handleStores reports the served store's size and format — the cheap
// "how big is this thing / is it still growing" probe behind
// `curl /stores`, an array so a future multi-store server keeps the
// shape. Backends without StatsProvider (custom test stores) still get
// an entry: campaign count from the Store interface, flagged Estimated
// because episode and byte totals are unknowable through it.
func (s *Server) handleStores(w http.ResponseWriter, r *http.Request) {
	st, err := storeStats(s.store)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, []results.StoreStats{st})
}

func storeStats(store results.Store) (results.StoreStats, error) {
	if sp, ok := store.(results.StatsProvider); ok {
		return sp.Stats()
	}
	recs, err := store.Campaigns()
	if err != nil {
		return results.StoreStats{}, err
	}
	st := results.StoreStats{Format: "unknown", Campaigns: len(recs), Estimated: true}
	if lister, ok := store.(interface{ EpisodeCampaigns() []string }); ok {
		for _, name := range lister.EpisodeCampaigns() {
			eps, err := store.Episodes(name)
			if err != nil {
				return results.StoreStats{}, err
			}
			st.Episodes += len(eps)
		}
	}
	return st, nil
}

func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	switch {
	case q.Get("other") != "":
		other, err := segstore.LoadAny(q.Get("other"))
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		diffs, err := results.Diff(s.store, other)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, diffs)
	case q.Get("a") != "" && q.Get("b") != "":
		ra, err := s.aggregate(q.Get("a"))
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		rb, err := s.aggregate(q.Get("b"))
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		if ra == nil || rb == nil {
			writeError(w, http.StatusNotFound, "both campaigns must exist (a=%v b=%v)", ra != nil, rb != nil)
			return
		}
		writeJSON(w, http.StatusOK, results.DiffRecords(q.Get("a")+" vs "+q.Get("b"), ra, rb))
	default:
		writeError(w, http.StatusBadRequest, "diff needs ?other=store (JSONL file or segstore dir) or ?a=campaign&b=campaign")
	}
}

// RunRequest is the POST /runs body: exactly one of a registered
// scenario name, an inline declarative spec, or procedural-generator
// parameters, plus mode/runs/seed and — for smart-mode runs — an
// optional inline attack-policy artifact ("policy": the JSON
// robotack-search writes). Queued and leased workers evaluate the
// policy instead of the built-in fixed trigger.
type RunRequest = runq.Request

// RunStatus is the progress of one queued run.
type RunStatus struct {
	ID       int    `json:"id"`
	Name     string `json:"name"`
	Scenario string `json:"scenario"`
	Mode     string `json:"mode"`
	Total    int    `json:"total"`
	Done     int    `json:"done"`
	// State is queued | running | done | failed | cancelled.
	State   string `json:"state"`
	Attempt int    `json:"attempt,omitempty"`
	Worker  string `json:"worker,omitempty"`
	Error   string `json:"error,omitempty"`
}

func statusOf(j runq.Job) RunStatus {
	return RunStatus{
		ID:       j.ID,
		Name:     j.Request.RecordName(),
		Scenario: j.Request.Label(),
		Mode:     strings.ToLower(j.Request.Mode),
		Total:    j.Total,
		Done:     j.Done,
		State:    string(j.State),
		Attempt:  j.Attempt,
		Worker:   j.Worker,
		Error:    j.Error,
	}
}

func (s *Server) handleLaunch(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	// Validate before Submit so a client fault reads as 400 while a
	// server fault past validation (e.g. a full disk under the journal)
	// reads as 500/503.
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	job, err := s.queue.Submit(req)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, runq.ErrClosed) {
			status = http.StatusServiceUnavailable
		}
		s.log.Error("run submission failed", "err", err)
		writeError(w, status, "%v", err)
		return
	}
	s.log.Info("run accepted", "job", job.ID, "campaign", job.Request.RecordName(),
		"mode", strings.ToLower(job.Request.Mode), "runs", job.Total)
	writeJSON(w, http.StatusAccepted, statusOf(job))
}

func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	jobs := s.queue.Jobs()
	out := make([]RunStatus, len(jobs))
	for i, j := range jobs {
		out[i] = statusOf(j)
	}
	writeJSON(w, http.StatusOK, out)
}

// runID parses the {id} path segment, writing the error response on
// failure. strconv.Atoi rejects trailing garbage — "12abc" must not
// alias run 12, least of all on DELETE.
func runID(w http.ResponseWriter, r *http.Request) (int, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad run id %q", r.PathValue("id"))
		return 0, false
	}
	return id, true
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	id, ok := runID(w, r)
	if !ok {
		return
	}
	job, ok := s.queue.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no run %d", id)
		return
	}
	writeJSON(w, http.StatusOK, statusOf(job))
}

func (s *Server) handleRunCancel(w http.ResponseWriter, r *http.Request) {
	id, ok := runID(w, r)
	if !ok {
		return
	}
	if err := s.queue.Cancel(id); err != nil {
		writeError(w, http.StatusNotFound, "no run %d", id)
		return
	}
	job, _ := s.queue.Get(id)
	writeJSON(w, http.StatusOK, statusOf(job))
}

// handleRunEvents streams a run's progress as Server-Sent Events: a
// "progress" event per state change or episode completion, then one
// terminal "done", "failed" or "cancelled" event, after which the
// stream closes. A subscriber to an already-terminal run gets just
// the terminal event.
func (s *Server) handleRunEvents(w http.ResponseWriter, r *http.Request) {
	id, ok := runID(w, r)
	if !ok {
		return
	}
	job, ch, unsub, err := s.queue.Subscribe(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "no run %d", id)
		return
	}
	defer unsub()
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	// The snapshot was taken atomically with the subscription, so the
	// client always sees the current state first and no event between
	// subscribe and snapshot is lost. EventOf re-reads the job, which
	// may already have advanced past the snapshot — that is fine, the
	// subscription channel replays anything newer — but it must not be
	// missing, so fall back to the snapshot on a race with deletion.
	ev, ok := s.queue.EventOf(job.ID)
	if !ok {
		ev = runq.Event{ID: job.ID, State: job.State, Done: job.Done, Total: job.Total, Error: job.Error}
	}
	writeSSE(w, ev)
	fl.Flush()
	if ev.State.Terminal() {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-ch:
			if !ok {
				return
			}
			writeSSE(w, ev)
			fl.Flush()
			if ev.State.Terminal() {
				return
			}
		}
	}
}

// writeSSE writes one event. Non-terminal updates are named
// "progress"; the terminal event is named after the final state, so a
// client can wait with nothing but `grep -m1 'event: done'`.
func writeSSE(w http.ResponseWriter, ev runq.Event) {
	name := "progress"
	if ev.State.Terminal() {
		name = string(ev.State)
	}
	raw, _ := json.Marshal(ev)
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, raw)
}

// workerError maps queue errors to protocol statuses: 404 for unknown
// jobs, 409 for lost leases (the worker's signal to abandon the run).
func workerError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, runq.ErrNotFound):
		writeError(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, runq.ErrLeaseLost):
		writeError(w, http.StatusConflict, "%v", err)
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

func decodeBody[T any](w http.ResponseWriter, r *http.Request) (T, bool) {
	var v T
	if err := json.NewDecoder(r.Body).Decode(&v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return v, false
	}
	return v, true
}

func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeBody[runq.LeaseRequest](w, r)
	if !ok {
		return
	}
	if req.Worker == "" || req.Worker == runq.LocalWorker {
		writeError(w, http.StatusBadRequest, "worker name required (and %q is reserved)", runq.LocalWorker)
		return
	}
	job, ok := s.queue.Lease(req.Worker)
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	if job.Trace != nil {
		w.Header().Set(runq.TraceparentHeader, job.Trace.Traceparent(job.Attempt))
	}
	writeJSON(w, http.StatusOK, runq.LeaseResponse{
		Job:            job,
		LeaseTTLMillis: s.queue.LeaseTTL().Milliseconds(),
	})
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	id, ok := runID(w, r)
	if !ok {
		return
	}
	req, ok := decodeBody[runq.HeartbeatRequest](w, r)
	if !ok {
		return
	}
	if err := s.queue.Heartbeat(id, req.Worker, req.Done, req.Total); err != nil {
		workerError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// handleWorkerEpisodes appends a worker's completed episodes to the
// served store — through the same Sink interface local runs use, so
// an episode acknowledged here is as durable as a local one.
func (s *Server) handleWorkerEpisodes(w http.ResponseWriter, r *http.Request) {
	id, ok := runID(w, r)
	if !ok {
		return
	}
	req, ok := decodeBody[runq.EpisodesRequest](w, r)
	if !ok {
		return
	}
	if err := s.queue.CheckLease(id, req.Worker); err != nil {
		workerError(w, err)
		return
	}
	// The lease gates who may write; this gates what they write — a
	// worker can only append into its own job's campaign and index
	// range, never clobber another campaign's records.
	job, ok := s.queue.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no run %d", id)
		return
	}
	name := job.Request.RecordName()
	for _, ep := range req.Episodes {
		if ep.Campaign != name {
			writeError(w, http.StatusBadRequest, "episode %d is for campaign %q, job %d writes %q", ep.Index, ep.Campaign, id, name)
			return
		}
		if ep.Index < 0 || ep.Index >= job.Total {
			writeError(w, http.StatusBadRequest, "episode index %d out of range [0,%d)", ep.Index, job.Total)
			return
		}
	}
	for _, ep := range req.Episodes {
		if err := s.store.Append(ep); err != nil {
			writeError(w, http.StatusInternalServerError, "append episode %d: %v", ep.Index, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// handleWorkerSpans ingests a traced job's forwarded worker spans into
// the server's trace sink, so one sink holds the whole cross-process
// trace. The lease gates who may post; the trace-ID check gates what —
// a worker's spans can only land on its own job's trace. Spans are
// observability, not results: with tracing off server-side they are
// accepted and dropped.
func (s *Server) handleWorkerSpans(w http.ResponseWriter, r *http.Request) {
	id, ok := runID(w, r)
	if !ok {
		return
	}
	req, ok := decodeBody[runq.SpansRequest](w, r)
	if !ok {
		return
	}
	if err := s.queue.CheckLease(id, req.Worker); err != nil {
		workerError(w, err)
		return
	}
	job, ok := s.queue.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no run %d", id)
		return
	}
	if tr := s.queue.Tracer(); tr != nil && job.Trace != nil {
		for i := range req.Spans {
			sp := &req.Spans[i]
			if sp.TraceID != job.Trace.TraceID {
				writeError(w, http.StatusBadRequest,
					"span %s is for trace %s, job %d traces %s", sp.SpanID, sp.TraceID, id, job.Trace.TraceID)
				return
			}
			tr.Emit(sp) // Service stays the worker's name
		}
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	id, ok := runID(w, r)
	if !ok {
		return
	}
	req, ok := decodeBody[runq.CompleteRequest](w, r)
	if !ok {
		return
	}
	if err := s.queue.CheckLease(id, req.Worker); err != nil {
		workerError(w, err)
		return
	}
	if req.Campaign != nil {
		if err := s.store.PutCampaign(*req.Campaign); err != nil {
			writeError(w, http.StatusInternalServerError, "store aggregate: %v", err)
			return
		}
	}
	if err := s.queue.Complete(id, req.Worker); err != nil {
		workerError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) handleFail(w http.ResponseWriter, r *http.Request) {
	id, ok := runID(w, r)
	if !ok {
		return
	}
	req, ok := decodeBody[runq.FailRequest](w, r)
	if !ok {
		return
	}
	if err := s.queue.Fail(id, req.Worker, req.Error, req.Requeue); err != nil {
		workerError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}
