// Package campaignd is the HTTP campaign service: it serves a
// results.Store (campaign list, per-campaign records and episodes,
// Table II summaries, store-vs-store diffs) and launches new campaigns
// on the execution engine, streaming their episodes into the same
// store with live progress. It is the many-clients face of the results
// API — robotack-campaign writes a store on one machine, robotack-serve
// makes it queryable, diffable and extendable for everyone else.
package campaignd

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"

	"github.com/robotack/robotack/internal/core"
	"github.com/robotack/robotack/internal/engine"
	"github.com/robotack/robotack/internal/experiment"
	"github.com/robotack/robotack/internal/results"
	"github.com/robotack/robotack/internal/scenario"
	"github.com/robotack/robotack/internal/scenegen"
)

// Server is the HTTP campaign service. Create one with New; it
// implements http.Handler.
//
// Endpoints:
//
//	GET  /campaigns                    stored campaign aggregates
//	GET  /campaigns/{name}             one aggregate (recomputed from
//	                                   episodes when only those exist)
//	GET  /campaigns/{name}/episodes    the campaign's episode records
//	GET  /campaigns/{name}/summary     Table II text for one campaign
//	GET  /summary                      Table II text for the whole store
//	GET  /diff?other=path              diff the store against another JSONL store
//	GET  /diff?a=name&b=name           diff two campaigns within the store
//	POST /runs                         launch a campaign (JSON body: RunRequest)
//	GET  /runs                         all launched runs' statuses
//	GET  /runs/{id}                    one run's status and progress
type Server struct {
	store   results.Store
	workers int
	oracles map[core.Vector]core.Oracle
	mux     *http.ServeMux

	mu     sync.Mutex
	nextID int
	runs   map[int]*RunStatus
}

// Option configures a Server.
type Option func(*Server)

// WithWorkers sets the engine worker-pool size for launched runs.
func WithWorkers(n int) Option {
	return func(s *Server) {
		if n >= 1 {
			s.workers = n
		}
	}
}

// WithOracles supplies trained safety-hijacker oracles to launched
// runs (default: the analytic oracle).
func WithOracles(o map[core.Vector]core.Oracle) Option {
	return func(s *Server) { s.oracles = o }
}

// New creates the campaign service over store.
func New(store results.Store, opts ...Option) *Server {
	s := &Server{
		store:   store,
		workers: engine.DefaultWorkers(),
		runs:    make(map[int]*RunStatus),
	}
	for _, opt := range opts {
		opt(s)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /campaigns", s.handleCampaigns)
	s.mux.HandleFunc("GET /campaigns/{name}", s.handleCampaign)
	s.mux.HandleFunc("GET /campaigns/{name}/episodes", s.handleEpisodes)
	s.mux.HandleFunc("GET /campaigns/{name}/summary", s.handleCampaignSummary)
	s.mux.HandleFunc("GET /summary", s.handleSummary)
	s.mux.HandleFunc("GET /diff", s.handleDiff)
	s.mux.HandleFunc("POST /runs", s.handleLaunch)
	s.mux.HandleFunc("GET /runs", s.handleRuns)
	s.mux.HandleFunc("GET /runs/{id}", s.handleRun)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// aggregate returns the stored aggregate for name, recomputing it from
// episode records when the campaign was interrupted before its
// aggregate landed.
func (s *Server) aggregate(name string) (*results.CampaignRecord, error) {
	return results.AggregateFor(s.store, name)
}

func (s *Server) handleCampaigns(w http.ResponseWriter, r *http.Request) {
	recs, err := s.store.Campaigns()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, recs)
}

func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	rec, err := s.aggregate(name)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if rec == nil {
		writeError(w, http.StatusNotFound, "no campaign %q in store", name)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *Server) handleEpisodes(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	eps, err := s.store.Episodes(name)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if len(eps) == 0 {
		writeError(w, http.StatusNotFound, "no episodes for campaign %q", name)
		return
	}
	writeJSON(w, http.StatusOK, eps)
}

func (s *Server) handleCampaignSummary(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	rec, err := s.aggregate(name)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if rec == nil {
		writeError(w, http.StatusNotFound, "no campaign %q in store", name)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, experiment.FormatTableII([]results.CampaignRecord{*rec}))
}

func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) {
	recs, err := s.store.Campaigns()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, experiment.FormatTableII(recs))
	robo, base := splitByMode(recs)
	fmt.Fprintf(w, "\n%s", experiment.FormatSummary(experiment.Summarize(robo), experiment.Summarize(base)))
}

// splitByMode separates the smart campaigns from the random baseline
// for the headline summary, matching robotack-campaign's headline:
// golden (mode 0) and noSH campaigns belong to neither side.
func splitByMode(recs []results.CampaignRecord) (robo, base []results.CampaignRecord) {
	for _, r := range recs {
		switch r.Mode {
		case core.ModeSmart:
			robo = append(robo, r)
		case core.ModeRandom:
			base = append(base, r)
		}
	}
	return robo, base
}

func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	switch {
	case q.Get("other") != "":
		other, err := results.Load(q.Get("other"))
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		diffs, err := results.Diff(s.store, other)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, diffs)
	case q.Get("a") != "" && q.Get("b") != "":
		ra, err := s.aggregate(q.Get("a"))
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		rb, err := s.aggregate(q.Get("b"))
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		if ra == nil || rb == nil {
			writeError(w, http.StatusNotFound, "both campaigns must exist (a=%v b=%v)", ra != nil, rb != nil)
			return
		}
		writeJSON(w, http.StatusOK, results.DiffRecords(q.Get("a")+" vs "+q.Get("b"), ra, rb))
	default:
		writeError(w, http.StatusBadRequest, "diff needs ?other=store.jsonl or ?a=campaign&b=campaign")
	}
}

// RunRequest is the POST /runs body.
type RunRequest struct {
	// Scenario names a registered spec ("DS-1".."DS-5" or anything
	// registered in scenegen).
	Scenario string `json:"scenario"`
	// Mode is golden | smart | nosh | random.
	Mode string `json:"mode"`
	// Name keys the persisted records (default "<scenario>-<mode>").
	Name string `json:"name,omitempty"`
	Runs int    `json:"runs"`
	Seed int64  `json:"seed"`
	// Resume folds episodes already stored under Name instead of
	// re-running them.
	Resume bool `json:"resume,omitempty"`
}

// RunStatus is the progress of one launched run.
type RunStatus struct {
	ID       int    `json:"id"`
	Name     string `json:"name"`
	Scenario string `json:"scenario"`
	Mode     string `json:"mode"`
	Total    int    `json:"total"`
	Done     int    `json:"done"`
	State    string `json:"state"` // running | done | failed
	Error    string `json:"error,omitempty"`
}

func parseMode(s string) (core.Mode, error) {
	switch strings.ToLower(s) {
	case "golden":
		return 0, nil
	case "smart":
		return core.ModeSmart, nil
	case "nosh":
		return core.ModeNoSH, nil
	case "random":
		return core.ModeRandom, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (want golden|smart|nosh|random)", s)
	}
}

func (s *Server) handleLaunch(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	mode, err := parseMode(req.Mode)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Runs <= 0 {
		writeError(w, http.StatusBadRequest, "runs must be positive, got %d", req.Runs)
		return
	}
	if _, ok := scenegen.Lookup(req.Scenario); !ok {
		writeError(w, http.StatusBadRequest, "unknown scenario %q (have %v)", req.Scenario, scenegen.Names())
		return
	}
	name := req.Name
	if name == "" {
		name = fmt.Sprintf("%s-%s", req.Scenario, strings.ToLower(req.Mode))
	}

	s.mu.Lock()
	s.nextID++
	st := &RunStatus{
		ID:       s.nextID,
		Name:     name,
		Scenario: req.Scenario,
		Mode:     strings.ToLower(req.Mode),
		Total:    req.Runs,
		State:    "running",
	}
	s.runs[st.ID] = st
	s.mu.Unlock()

	go s.execute(st, req, mode)
	writeJSON(w, http.StatusAccepted, st.snapshot(&s.mu))
}

// execute runs one launched campaign to completion, updating the
// status as episodes finish.
func (s *Server) execute(st *RunStatus, req RunRequest, mode core.Mode) {
	eng := engine.New(
		engine.WithWorkers(s.workers),
		engine.WithProgress(func(done, total int) {
			s.mu.Lock()
			st.Done = done
			s.mu.Unlock()
		}),
	)
	src := scenario.Named(req.Scenario)
	opts := []experiment.RunOption{
		experiment.WithSink(s.store),
		experiment.WithRecordName(st.Name),
	}
	if req.Resume {
		opts = append(opts, experiment.WithResume(s.store))
	}
	var err error
	if mode == 0 {
		_, err = experiment.RunGoldenOn(eng, src, req.Runs, req.Seed, opts...)
	} else {
		c := experiment.Campaign{
			Name:          st.Name,
			Scenario:      src,
			Mode:          mode,
			ExpectCrashes: true,
		}
		_, err = experiment.RunCampaignOn(eng, c, req.Runs, req.Seed, s.oracles, opts...)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		st.State = "failed"
		st.Error = err.Error()
		return
	}
	st.State = "done"
}

// snapshot copies the status under the server lock.
func (st *RunStatus) snapshot(mu *sync.Mutex) RunStatus {
	mu.Lock()
	defer mu.Unlock()
	return *st
}

func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]RunStatus, 0, len(s.runs))
	for _, st := range s.runs {
		out = append(out, *st)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var id int
	if _, err := fmt.Sscanf(r.PathValue("id"), "%d", &id); err != nil {
		writeError(w, http.StatusBadRequest, "bad run id %q", r.PathValue("id"))
		return
	}
	s.mu.Lock()
	st, ok := s.runs[id]
	var cp RunStatus
	if ok {
		cp = *st
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no run %d", id)
		return
	}
	writeJSON(w, http.StatusOK, cp)
}
