package campaignd

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/robotack/robotack/internal/results"
)

// TestServeInlinePolicy: POST /runs with an inline policy artifact runs
// the smart campaign under that policy; the "paper" kind reproduces the
// policy-free run bit-identically, and malformed artifacts are rejected
// at submission with the artifact's own error text.
func TestServeInlinePolicy(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	store := results.NewMemStore()
	ts := newTestServer(t, store, WithWorkers(4))

	launch := func(body string) RunStatus {
		t.Helper()
		resp, err := http.Post(ts.URL+"/runs", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st RunStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("launch %q: status %d", body, resp.StatusCode)
		}
		return waitRun(t, ts.URL, st.ID, 3*time.Minute)
	}

	// Baseline: no policy.
	st := launch(`{"scenario":"DS-2","mode":"smart","name":"plain","runs":3,"seed":42}`)
	if st.State != "done" {
		t.Fatalf("baseline run: %q (%s)", st.State, st.Error)
	}
	// Same campaign through the paper-kind artifact: zero drift.
	st = launch(`{"scenario":"DS-2","mode":"smart","name":"via-paper","runs":3,"seed":42,"policy":{"v":1,"kind":"paper"}}`)
	if st.State != "done" {
		t.Fatalf("paper-policy run: %q (%s)", st.State, st.Error)
	}
	plain, err := store.Episodes("plain")
	if err != nil {
		t.Fatal(err)
	}
	viaPaper, err := store.Episodes("via-paper")
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) == 0 || len(plain) != len(viaPaper) {
		t.Fatalf("episodes: %d plain vs %d via-paper", len(plain), len(viaPaper))
	}
	for i := range plain {
		a, b := plain[i], viaPaper[i]
		a.Campaign, b.Campaign = "", ""
		ja, _ := json.Marshal(a)
		jb, _ := json.Marshal(b)
		if !bytes.Equal(ja, jb) {
			t.Errorf("episode %d drifted under the paper-kind policy:\n%s\nvs\n%s", i, ja, jb)
		}
	}

	// A parameterized artifact is accepted and runs.
	st = launch(`{"scenario":"DS-2","mode":"smart","name":"via-param","runs":3,"seed":42,"policy":{"v":1,"kind":"param","params":{"gamma":12,"gamma_move_in":-2,"k_min":4,"k_max_vehicle":59,"k_max_pedestrian":31,"delay":0,"offset_scale":1,"offset_bias_m":0,"step_scale":1,"swap_masking":false}}}`)
	if st.State != "done" {
		t.Fatalf("param-policy run: %q (%s)", st.State, st.Error)
	}

	// Rejections happen at POST time, with the policy error text.
	for body, want := range map[string]string{
		// The error body is JSON, so quotes inside the message arrive
		// escaped — match quote-free fragments.
		`{"scenario":"DS-2","mode":"smart","runs":2,"seed":1,"policy":{"v":1,"kind":"bandit"}}`: `unknown policy kind`,
		`{"scenario":"DS-2","mode":"smart","runs":2,"seed":1,"policy":{"v":99,"kind":"paper"}}`: "newer than this build",
		`{"scenario":"DS-2","mode":"golden","runs":2,"seed":1,"policy":{"v":1,"kind":"paper"}}`: "smart-mode runs only",
		`{"scenario":"DS-2","mode":"smart","runs":2,"seed":1,"policy":{"v":1,"kind":"param"}}`:  "requires params",
	} {
		resp, err := http.Post(ts.URL+"/runs", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
		if !strings.Contains(string(raw), want) {
			t.Errorf("body %q: error %q does not contain %q", body, raw, want)
		}
	}
}
